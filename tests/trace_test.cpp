// Trace facility and cluster-wide observability tests.
#include <gtest/gtest.h>

#include <sstream>

#include "gm/cluster.hpp"
#include "sim/trace.hpp"

namespace myri {
namespace {

TEST(Trace, SilentByDefault) {
  sim::Trace t;
  EXPECT_FALSE(t.on(sim::TraceCat::kNet));
  t.log(sim::TraceCat::kNet, 1000, "x", "should go nowhere");  // no crash
}

TEST(Trace, EnabledCategoryLogsWithTimestamp) {
  sim::Trace t;
  std::ostringstream out;
  t.enable(sim::TraceCat::kFt, &out);
  EXPECT_TRUE(t.on(sim::TraceCat::kFt));
  EXPECT_FALSE(t.on(sim::TraceCat::kNet));
  t.log(sim::TraceCat::kFt, sim::usec(12) + 345, "ftd", "woken");
  const std::string s = out.str();
  EXPECT_NE(s.find("12.345"), std::string::npos);
  EXPECT_NE(s.find("ftd: woken"), std::string::npos);
}

TEST(Trace, DisableStopsLogging) {
  sim::Trace t;
  std::ostringstream out;
  t.enable(sim::TraceCat::kNic, &out);
  t.disable(sim::TraceCat::kNic);
  t.log(sim::TraceCat::kNic, 0, "nic", "dropped");
  EXPECT_TRUE(out.str().empty());
}

TEST(Trace, ClusterEmitsWireEventsWhenTraced) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  gm::Cluster cluster(cc);
  std::ostringstream out;
  sim::Trace t;
  t.enable(sim::TraceCat::kNet, &out);
  t.enable(sim::TraceCat::kNic, &out);
  cluster.set_trace(&t);

  auto& tx = cluster.node(0).open_port(2);
  auto& rx = cluster.node(1).open_port(3);
  cluster.run_for(sim::usec(900));
  rx.provide_receive_buffer(rx.alloc_dma_buffer(128));
  gm::Buffer b = tx.alloc_dma_buffer(64);
  (void)tx.post(b, 64, {.dst = 1, .dst_port = 3});
  cluster.run_for(sim::msec(2));

  const std::string s = out.str();
  EXPECT_NE(s.find("TX DATA"), std::string::npos);
  EXPECT_NE(s.find("RX DATA"), std::string::npos);
  EXPECT_NE(s.find("ACK"), std::string::npos);
}

TEST(Trace, FtCategoryCoversRecoveryLifecycle) {
  gm::ClusterConfig cc;
  cc.nodes = 2;
  cc.mode = mcp::McpMode::kFtgm;
  gm::Cluster cluster(cc);
  std::ostringstream out;
  sim::Trace t;
  t.enable(sim::TraceCat::kFt, &out);
  t.enable(sim::TraceCat::kMcp, &out);
  cluster.set_trace(&t);
  cluster.node(0).open_port(2);
  cluster.run_for(sim::msec(1));
  cluster.node(0).mcp().inject_hang("traced");
  cluster.run_for(sim::sec(2));
  const std::string s = out.str();
  EXPECT_NE(s.find("HUNG: traced"), std::string::npos);
  EXPECT_NE(s.find("woken by FATAL irq"), std::string::npos);
  EXPECT_NE(s.find("hang confirmed"), std::string::npos);
  EXPECT_NE(s.find("FTD recovery phase complete"), std::string::npos);
}

}  // namespace
}  // namespace myri
